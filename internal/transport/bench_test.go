package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// BenchmarkTCPBulkTransfer measures simulator cost per simulated
// megabyte of an uncontended TCP stream.
func BenchmarkTCPBulkTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _, f := buildStar(int64(i), 2, netsim.SwitchConfig{PortBuffer: 1 << 20}, gigELink, FabricConfig{Kind: TCP})
		f.Conn(0, 1).Send(Message{Size: 1 << 20})
		s.Run()
	}
}

// BenchmarkTCPIncast measures the congested case that dominates the
// paper's experiments: 7 senders into one receiver with a small buffer.
func BenchmarkTCPIncast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _, f := buildStar(int64(i), 8, netsim.SwitchConfig{PortBuffer: 64 << 10}, gigELink, FabricConfig{Kind: TCP})
		for src := 0; src < 7; src++ {
			f.Conn(src, 7).Send(Message{Size: 256 << 10})
		}
		s.Run()
	}
}

// BenchmarkGMBulkTransfer measures the lossless stack's cost.
func BenchmarkGMBulkTransfer(b *testing.B) {
	link := netsim.LinkConfig{Rate: 250_000_000, Latency: 4 * sim.Microsecond}
	for i := 0; i < b.N; i++ {
		s, _, f := buildStar(int64(i), 2, netsim.SwitchConfig{PortBuffer: 32 << 10, Lossless: true}, link, FabricConfig{Kind: GM})
		f.Conn(0, 1).Send(Message{Size: 1 << 20})
		s.Run()
	}
}
