package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// buildNamedPair is buildStar with uniquely named hosts, so a node
// fault schedule can target one by name.
func buildNamedPair(seed int64, fcfg FabricConfig) (*sim.Simulator, *netsim.Network, *Fabric) {
	s := sim.New(seed)
	nw := netsim.New(s)
	sw := nw.AddSwitch("sw", netsim.SwitchConfig{PortBuffer: 1 << 20})
	hosts := make([]*netsim.Device, 2)
	for i, name := range []string{"h0", "h1"} {
		hosts[i] = nw.AddHost(name)
		nw.Connect(hosts[i], sw, gigELink)
	}
	nw.ComputeRoutes()
	return s, nw, NewFabric(nw, hosts, fcfg)
}

// TestQuenchDrainsAfterNodeLoss: a transfer in flight toward a host
// that dies mid-stream would retransmit into the blackhole forever;
// Quench on the dead host aborts both directions so the event loop
// drains. Without the abort this test would never return.
func TestQuenchDrainsAfterNodeLoss(t *testing.T) {
	for _, kind := range []Kind{TCP, GM} {
		s, nw, f := buildNamedPair(1, FabricConfig{Kind: kind})
		delivered := 0
		f.Conn(1, 0).SetHandler(func(m Message) { delivered++ })
		// ~8 ms of payload; the host dies at 2 ms, mid-transfer.
		f.Conn(0, 1).Send(Message{Kind: 1, Tag: 1, MsgSeq: 1, Size: 1_000_000})
		fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{{Host: "h1", At: 2 * sim.Millisecond}}}
		if err := nw.ApplyFaults(fs); err != nil {
			t.Fatal(err)
		}
		// The failure detector "declares" h1 dead at 5 ms and quenches.
		s.At(5*sim.Millisecond, func() { f.Quench(1) })
		s.Run()
		if delivered != 0 {
			t.Fatalf("%v: %d messages delivered to a host dead mid-transfer", kind, delivered)
		}
		// Leftover timers fire as no-ops; the clock must stay bounded
		// instead of marching on retransmission backoff forever.
		if s.Now() > 10*sim.Second {
			t.Fatalf("%v: clock ran to %v after quench", kind, s.Now())
		}
		s.MustQuiesce()
	}
}

// TestQuenchIdempotent: quenching an idle fabric, or the same host
// twice, is harmless and the fabric's other connections keep working.
func TestQuenchIdempotent(t *testing.T) {
	for _, kind := range []Kind{TCP, GM} {
		s, _, f := buildNamedPair(2, FabricConfig{Kind: kind})
		f.Quench(1)
		f.Quench(1)
		got := 0
		f.Conn(1, 0).SetHandler(func(m Message) { got++ })
		f.Conn(0, 1).Send(Message{Kind: 1, Tag: 1, MsgSeq: 1, Size: 1000})
		s.Run()
		if got != 0 {
			t.Fatalf("%v: aborted connection delivered %d messages", kind, got)
		}
		s.MustQuiesce()
	}
}
