package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// buildNamedPair is buildStar with uniquely named hosts, so a node
// fault schedule can target one by name.
func buildNamedPair(seed int64, fcfg FabricConfig) (*sim.Simulator, *netsim.Network, *Fabric) {
	s := sim.New(seed)
	nw := netsim.New(s)
	sw := nw.AddSwitch("sw", netsim.SwitchConfig{PortBuffer: 1 << 20})
	hosts := make([]*netsim.Device, 2)
	for i, name := range []string{"h0", "h1"} {
		hosts[i] = nw.AddHost(name)
		nw.Connect(hosts[i], sw, gigELink)
	}
	nw.ComputeRoutes()
	return s, nw, NewFabric(nw, hosts, fcfg)
}

// TestQuenchDrainsAfterNodeLoss: a transfer in flight toward a host
// that dies mid-stream would retransmit into the blackhole forever;
// Quench on the dead host aborts both directions so the event loop
// drains. Without the abort this test would never return.
func TestQuenchDrainsAfterNodeLoss(t *testing.T) {
	for _, kind := range []Kind{TCP, GM} {
		s, nw, f := buildNamedPair(1, FabricConfig{Kind: kind})
		delivered := 0
		f.Conn(1, 0).SetHandler(func(m Message) { delivered++ })
		// ~8 ms of payload; the host dies at 2 ms, mid-transfer.
		f.Conn(0, 1).Send(Message{Kind: 1, Tag: 1, MsgSeq: 1, Size: 1_000_000})
		fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{{Host: "h1", At: 2 * sim.Millisecond}}}
		if err := nw.ApplyFaults(fs); err != nil {
			t.Fatal(err)
		}
		// The failure detector "declares" h1 dead at 5 ms and quenches.
		s.At(5*sim.Millisecond, func() { f.Quench(1) })
		s.Run()
		if delivered != 0 {
			t.Fatalf("%v: %d messages delivered to a host dead mid-transfer", kind, delivered)
		}
		// Leftover timers fire as no-ops; the clock must stay bounded
		// instead of marching on retransmission backoff forever.
		if s.Now() > 10*sim.Second {
			t.Fatalf("%v: clock ran to %v after quench", kind, s.Now())
		}
		s.MustQuiesce()
	}
}

// TestMaxRetriesAbortsAfterNodeLoss: like the quench test, but nobody
// declares h1 dead — no failure detector, no Quench. The sender must
// still give up on its own after MaxRetries consecutive RTOs
// (tcp_retries2 semantics) so the event loop drains. Without the cap
// the RTO timer rearms forever and s.Run() never returns. TCP only:
// GM has no acknowledgments and so nothing to retransmit.
func TestMaxRetriesAbortsAfterNodeLoss(t *testing.T) {
	s, nw, f := buildNamedPair(3, FabricConfig{Kind: TCP})
	delivered := 0
	f.Conn(1, 0).SetHandler(func(m Message) { delivered++ })
	// ~8 ms of payload; the host dies at 2 ms, mid-transfer.
	f.Conn(0, 1).Send(Message{Kind: 1, Tag: 1, MsgSeq: 1, Size: 1_000_000})
	fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{{Host: "h1", At: 2 * sim.Millisecond}}}
	if err := nw.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if delivered != 0 {
		t.Fatalf("%d messages delivered to a host dead mid-transfer", delivered)
	}
	// The default ladder (15 retries, RTO doubling to the 5 s cap)
	// gives up after roughly a minute of simulated peer silence: long
	// enough to prove the whole backoff ladder ran, bounded enough to
	// prove the connection actually quit.
	if now := s.Now(); now < 10*sim.Second || now > 200*sim.Second {
		t.Fatalf("clock at %v: give-up should land after the ~1 min backoff ladder", now)
	}
	// MaxRetries=15 means the 16th consecutive timeout aborts.
	if got := f.Conn(0, 1).Stats().Timeouts; got != 16 {
		t.Fatalf("sender recorded %d timeouts, want 16 (MaxRetries+1)", got)
	}
	s.MustQuiesce()
}

// TestQuenchIdempotent: quenching an idle fabric, or the same host
// twice, is harmless and the fabric's other connections keep working.
func TestQuenchIdempotent(t *testing.T) {
	for _, kind := range []Kind{TCP, GM} {
		s, _, f := buildNamedPair(2, FabricConfig{Kind: kind})
		f.Quench(1)
		f.Quench(1)
		got := 0
		f.Conn(1, 0).SetHandler(func(m Message) { got++ })
		f.Conn(0, 1).Send(Message{Kind: 1, Tag: 1, MsgSeq: 1, Size: 1000})
		s.Run()
		if got != 0 {
			t.Fatalf("%v: aborted connection delivered %d messages", kind, got)
		}
		s.MustQuiesce()
	}
}
