package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// gigELink is a 1 Gbit/s link (125 MB/s) with 20 µs latency.
var gigELink = netsim.LinkConfig{Rate: 125_000_000, Latency: 20 * sim.Microsecond}

// buildStar creates a star network of n hosts around one switch and a
// fabric of the given kind on top.
func buildStar(seed int64, n int, swCfg netsim.SwitchConfig, link netsim.LinkConfig, fcfg FabricConfig) (*sim.Simulator, *netsim.Network, *Fabric) {
	s := sim.New(seed)
	nw := netsim.New(s)
	sw := nw.AddSwitch("sw", swCfg)
	hosts := make([]*netsim.Device, n)
	for i := 0; i < n; i++ {
		hosts[i] = nw.AddHost("h")
		nw.Connect(hosts[i], sw, link)
	}
	nw.ComputeRoutes()
	return s, nw, NewFabric(nw, hosts, fcfg)
}

func TestTCPSingleMessageDelivery(t *testing.T) {
	s, _, f := buildStar(1, 2, netsim.SwitchConfig{PortBuffer: 1 << 20}, gigELink, FabricConfig{Kind: TCP})
	var got []Message
	var when sim.Time
	f.Conn(1, 0).SetHandler(func(m Message) { got = append(got, m); when = s.Now() })
	f.Conn(0, 1).Send(Message{Kind: 7, Tag: 42, MsgSeq: 5, Size: 10000})
	s.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	m := got[0]
	if m.Kind != 7 || m.Tag != 42 || m.MsgSeq != 5 || m.Size != 10000 {
		t.Fatalf("metadata corrupted: %+v", m)
	}
	// 10 kB over 1 Gb/s two hops: lower bound ≈ 2×(80µs + 20µs); with
	// slow-start round trips it should still be well under 5 ms.
	if when > 5*sim.Millisecond || when == 0 {
		t.Fatalf("delivery at %v, want (0, 5ms]", when)
	}
}

func TestTCPOrderingManyMessages(t *testing.T) {
	s, _, f := buildStar(2, 2, netsim.SwitchConfig{PortBuffer: 1 << 20}, gigELink, FabricConfig{Kind: TCP})
	var seqs []int64
	f.Conn(1, 0).SetHandler(func(m Message) { seqs = append(seqs, m.MsgSeq) })
	for i := 0; i < 50; i++ {
		f.Conn(0, 1).Send(Message{MsgSeq: int64(i), Size: 1000 + 37*i})
	}
	s.Run()
	if len(seqs) != 50 {
		t.Fatalf("delivered %d, want 50", len(seqs))
	}
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("out of order at %d: %v", i, seqs[:i+1])
		}
	}
}

func TestTCPDuplexSimultaneous(t *testing.T) {
	s, _, f := buildStar(3, 2, netsim.SwitchConfig{PortBuffer: 1 << 20}, gigELink, FabricConfig{Kind: TCP})
	var at0, at1 int
	f.Conn(0, 1).SetHandler(func(m Message) { at0++ })
	f.Conn(1, 0).SetHandler(func(m Message) { at1++ })
	for i := 0; i < 10; i++ {
		f.Conn(0, 1).Send(Message{Size: 50000})
		f.Conn(1, 0).Send(Message{Size: 50000})
	}
	s.Run()
	if at0 != 10 || at1 != 10 {
		t.Fatalf("duplex delivery: got %d/%d, want 10/10", at0, at1)
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	// Tiny switch buffer + three senders flooding one receiver: drops
	// are inevitable; every message must still arrive, in order.
	swCfg := netsim.SwitchConfig{PortBuffer: 8 << 10}
	s, nw, f := buildStar(4, 4, swCfg, gigELink, FabricConfig{Kind: TCP})
	const msgs, size = 20, 100_000
	got := map[int]int64{}
	order := map[int][]int64{}
	for src := 0; src < 3; src++ {
		src := src
		f.Conn(3, src).SetHandler(func(m Message) {
			got[src]++
			order[src] = append(order[src], m.MsgSeq)
		})
	}
	for i := 0; i < msgs; i++ {
		for src := 0; src < 3; src++ {
			f.Conn(src, 3).Send(Message{MsgSeq: int64(i), Size: size})
		}
	}
	s.Run()
	if nw.Drops() == 0 {
		t.Fatal("test needs drops to be meaningful; none occurred")
	}
	for src := 0; src < 3; src++ {
		if got[src] != msgs {
			t.Fatalf("src %d: delivered %d, want %d (drops=%d)", src, got[src], msgs, nw.Drops())
		}
		for i, q := range order[src] {
			if q != int64(i) {
				t.Fatalf("src %d out of order at %d: %v", src, i, order[src][:i+1])
			}
		}
	}
	st := f.TotalStats()
	if st.Retransmits == 0 {
		t.Fatal("expected retransmissions after drops")
	}
}

func TestTCPLossSlowsCompletion(t *testing.T) {
	run := func(buf int) sim.Time {
		s, _, f := buildStar(5, 4, netsim.SwitchConfig{PortBuffer: buf}, gigELink, FabricConfig{Kind: TCP})
		var last sim.Time
		var n int
		for src := 0; src < 3; src++ {
			f.Conn(3, src).SetHandler(func(m Message) { n++; last = s.Now() })
		}
		for src := 0; src < 3; src++ {
			f.Conn(src, 3).Send(Message{Size: 2_000_000})
		}
		s.Run()
		if n != 3 {
			t.Fatalf("delivered %d, want 3", n)
		}
		return last
	}
	big, small := run(4<<20), run(8<<10)
	if small <= big {
		t.Fatalf("loss should slow completion: small-buffer %v <= big-buffer %v", small, big)
	}
}

func TestTCPRTOFiresUnderSevereLoss(t *testing.T) {
	// Many-to-one incast with a minuscule buffer reliably triggers
	// whole-window losses and hence RTOs, the paper's straggler source.
	swCfg := netsim.SwitchConfig{PortBuffer: 4 << 10}
	s, _, f := buildStar(6, 9, swCfg, gigELink, FabricConfig{Kind: TCP})
	done := 0
	for src := 0; src < 8; src++ {
		f.Conn(8, src).SetHandler(func(m Message) { done++ })
	}
	for src := 0; src < 8; src++ {
		f.Conn(src, 8).Send(Message{Size: 500_000})
	}
	s.Run()
	if done != 8 {
		t.Fatalf("delivered %d, want 8", done)
	}
	if f.TotalStats().Timeouts == 0 {
		t.Fatal("expected at least one RTO under severe incast")
	}
}

func TestGMDeliveryAndOrdering(t *testing.T) {
	swCfg := netsim.SwitchConfig{PortBuffer: 64 << 10, Lossless: true}
	link := netsim.LinkConfig{Rate: 250_000_000, Latency: 7 * sim.Microsecond}
	s, nw, f := buildStar(7, 3, swCfg, link, FabricConfig{Kind: GM})
	var seqs []int64
	f.Conn(1, 0).SetHandler(func(m Message) { seqs = append(seqs, m.MsgSeq) })
	var fromTwo int
	f.Conn(1, 2).SetHandler(func(m Message) { fromTwo++ })
	for i := 0; i < 30; i++ {
		f.Conn(0, 1).Send(Message{MsgSeq: int64(i), Size: 10_000})
		f.Conn(2, 1).Send(Message{MsgSeq: int64(i), Size: 10_000})
	}
	s.Run()
	if nw.Drops() != 0 {
		t.Fatalf("GM network dropped %d packets", nw.Drops())
	}
	if len(seqs) != 30 || fromTwo != 30 {
		t.Fatalf("delivered %d/%d, want 30/30", len(seqs), fromTwo)
	}
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("out of order at %d: %v", i, seqs[:i+1])
		}
	}
	if f.TotalStats().Retransmits != 0 {
		t.Fatal("GM must not retransmit")
	}
}

func TestGMThroughputNearLineRate(t *testing.T) {
	swCfg := netsim.SwitchConfig{PortBuffer: 64 << 10, Lossless: true}
	link := netsim.LinkConfig{Rate: 250_000_000, Latency: 7 * sim.Microsecond}
	s, _, f := buildStar(8, 2, swCfg, link, FabricConfig{Kind: GM})
	var done sim.Time
	f.Conn(1, 0).SetHandler(func(m Message) { done = s.Now() })
	const size = 10 << 20
	f.Conn(0, 1).Send(Message{Size: size})
	s.Run()
	ideal := sim.TransmitTime(size, 250_000_000)
	if done < ideal {
		t.Fatalf("faster than line rate: %v < %v", done, ideal)
	}
	if done > ideal*12/10 {
		t.Fatalf("GM throughput too far from line rate: %v vs ideal %v", done, ideal)
	}
}

func TestTCPThroughputNearLineRateWhenUncontended(t *testing.T) {
	s, _, f := buildStar(9, 2, netsim.SwitchConfig{PortBuffer: 1 << 20}, gigELink, FabricConfig{Kind: TCP})
	var done sim.Time
	f.Conn(1, 0).SetHandler(func(m Message) { done = s.Now() })
	const size = 10 << 20
	f.Conn(0, 1).Send(Message{Size: size})
	s.Run()
	ideal := sim.TransmitTime(size, 125_000_000)
	if done < ideal {
		t.Fatalf("faster than line rate: %v < %v", done, ideal)
	}
	// Header overhead + slow start should cost well under 30 %.
	if done > ideal*13/10 {
		t.Fatalf("uncontended TCP too slow: %v vs ideal %v", done, ideal)
	}
}

func TestTCPDeterminism(t *testing.T) {
	run := func() (sim.Time, int64) {
		s, _, f := buildStar(42, 4, netsim.SwitchConfig{PortBuffer: 16 << 10}, gigELink, FabricConfig{Kind: TCP})
		var last sim.Time
		cnt := 0
		for src := 0; src < 3; src++ {
			f.Conn(3, src).SetHandler(func(m Message) { cnt++; last = s.Now() })
		}
		for i := 0; i < 5; i++ {
			for src := 0; src < 3; src++ {
				f.Conn(src, 3).Send(Message{Size: 200_000})
			}
		}
		s.Run()
		return last, f.TotalStats().Retransmits
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, r1, t2, r2)
	}
}

func TestSendPanicsOnNonPositiveSize(t *testing.T) {
	_, _, f := buildStar(10, 2, netsim.SwitchConfig{PortBuffer: 1 << 20}, gigELink, FabricConfig{Kind: TCP})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	f.Conn(0, 1).Send(Message{Size: 0})
}

func TestIntervalSet(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	s.add(20, 30) // bridges the two
	if len(s.iv) != 1 || s.iv[0] != (interval{10, 40}) {
		t.Fatalf("merge failed: %+v", s.iv)
	}
	if got := s.advance(5); got != 5 || s.empty() {
		t.Fatalf("advance(5) = %d (empty=%v), want 5 with data left", got, s.empty())
	}
	if got := s.advance(10); got != 40 || !s.empty() {
		t.Fatalf("advance(10) = %d (empty=%v), want 40 and empty", got, s.empty())
	}
	// Overlapping adds collapse.
	s.add(100, 110)
	s.add(105, 120)
	s.add(95, 101)
	if len(s.iv) != 1 || s.iv[0] != (interval{95, 120}) {
		t.Fatalf("overlap merge failed: %+v", s.iv)
	}
	// Disjoint stays disjoint and ordered.
	s = intervalSet{}
	s.add(50, 60)
	s.add(10, 20)
	s.add(30, 40)
	if len(s.iv) != 3 || s.iv[0].start != 10 || s.iv[1].start != 30 || s.iv[2].start != 50 {
		t.Fatalf("ordering failed: %+v", s.iv)
	}
	// Zero-length add is a no-op.
	s.add(70, 70)
	if len(s.iv) != 3 {
		t.Fatalf("zero-length add changed set: %+v", s.iv)
	}
}
