package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// mkHalves builds a linked pair of TCP halves on a two-host network for
// unit-testing internal mechanics.
func mkHalves(seed int64) (*sim.Simulator, *tcpConn, *tcpConn) {
	s := sim.New(seed)
	nw := netsim.New(s)
	a := nw.AddHost("a")
	b := nw.AddHost("b")
	nw.Connect(a, b, netsim.LinkConfig{Rate: 125_000_000, Latency: 10 * sim.Microsecond})
	nw.ComputeRoutes()
	epA := NewEndpoint(nw, a)
	epB := NewEndpoint(nw, b)
	cfg := DefaultTCPConfig().withDefaults()
	ca := newTCPHalf(nw, epA, epB, cfg)
	cb := newTCPHalf(nw, epB, epA, cfg)
	linkMirror(ca, cb)
	return s, ca, cb
}

func TestHolesAbove(t *testing.T) {
	_, _, cb := mkHalves(1)
	cb.rcvNxt = 100
	cb.ooo.add(200, 300)
	cb.ooo.add(400, 500)

	s, e, ok := cb.holesAbove(0)
	if !ok || s != 100 || e != 200 {
		t.Fatalf("first hole = [%d,%d) ok=%v, want [100,200)", s, e, ok)
	}
	s, e, ok = cb.holesAbove(150)
	if !ok || s != 150 || e != 200 {
		t.Fatalf("mid-hole = [%d,%d) ok=%v, want [150,200)", s, e, ok)
	}
	s, e, ok = cb.holesAbove(250)
	if !ok || s != 300 || e != 400 {
		t.Fatalf("second hole = [%d,%d) ok=%v, want [300,400)", s, e, ok)
	}
	if _, _, ok = cb.holesAbove(500); ok {
		t.Fatal("no holes beyond the highest received byte")
	}
	// No out-of-order data: nothing is known missing.
	cb.ooo = intervalSet{}
	if _, _, ok = cb.holesAbove(0); ok {
		t.Fatal("empty ooo must report no holes")
	}
}

func TestRTOEstimatorRFC6298(t *testing.T) {
	_, ca, _ := mkHalves(2)
	ca.sampleRTT(100 * sim.Millisecond) // less than RTOMin floor logic
	if ca.srtt != 100*sim.Millisecond || ca.rttvar != 50*sim.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", ca.srtt, ca.rttvar)
	}
	if ca.rto != 300*sim.Millisecond { // srtt + 4*rttvar
		t.Fatalf("rto=%v, want 300ms", ca.rto)
	}
	ca.sampleRTT(100 * sim.Millisecond) // steady input shrinks variance
	if ca.rttvar >= 50*sim.Millisecond {
		t.Fatalf("rttvar did not shrink: %v", ca.rttvar)
	}
	// The RTOMin floor applies.
	_, cc, _ := mkHalves(3)
	cc.sampleRTT(1 * sim.Millisecond)
	if cc.rto != cc.cfg.RTOMin {
		t.Fatalf("rto=%v, want floor %v", cc.rto, cc.cfg.RTOMin)
	}
}

func TestExponentialBackoffCapped(t *testing.T) {
	_, ca, _ := mkHalves(4)
	ca.rto = 200 * sim.Millisecond
	base := ca.effectiveRTO()
	ca.backoff = 1
	if got := ca.effectiveRTO(); got != 2*base {
		t.Fatalf("backoff 1: %v, want %v", got, 2*base)
	}
	ca.backoff = 20
	if got := ca.effectiveRTO(); got != ca.cfg.RTOMax {
		t.Fatalf("backoff 20: %v, want cap %v", got, ca.cfg.RTOMax)
	}
}

func TestCwndGrowthPhases(t *testing.T) {
	_, ca, _ := mkHalves(5)
	ca.cwnd = 2 * ca.cfg.MSS
	ca.ssthresh = 8 * ca.cfg.MSS
	ca.growCwnd() // slow start: +MSS
	if ca.cwnd != 3*ca.cfg.MSS {
		t.Fatalf("slow start growth wrong: %d", ca.cwnd)
	}
	ca.cwnd = 16 * ca.cfg.MSS // above ssthresh: congestion avoidance
	before := ca.cwnd
	ca.growCwnd()
	if ca.cwnd <= before || ca.cwnd-before > ca.cfg.MSS/8 {
		t.Fatalf("CA growth wrong: %d -> %d", before, ca.cwnd)
	}
	// cwnd never exceeds the receiver window.
	ca.cwnd = ca.cfg.RcvWindow
	ca.growCwnd()
	if ca.cwnd > ca.cfg.RcvWindow {
		t.Fatalf("cwnd exceeded rwnd: %d", ca.cwnd)
	}
}

func TestLimitedTransmitWindow(t *testing.T) {
	_, ca, _ := mkHalves(6)
	ca.cwnd = 4 * ca.cfg.MSS
	base := ca.window()
	ca.dupacks = 1
	if ca.window() != base+ca.cfg.MSS {
		t.Fatal("first dupack should extend window by one MSS")
	}
	ca.dupacks = 5
	if ca.window() != base+2*ca.cfg.MSS {
		t.Fatal("limited transmit caps at two segments")
	}
	ca.inRecovery = true
	if ca.window() != base {
		t.Fatal("no limited transmit during recovery")
	}
}

func TestDelayedAckCoalesces(t *testing.T) {
	s, ca, _ := mkHalves(7)
	ca.Send(Message{Size: 100_000})
	s.Run()
	st := ca.Stats()
	if st.MsgsSent != 1 || st.BytesSent != 100_000 {
		t.Fatalf("stats wrong: %+v", st)
	}
	// ~69 data segments; delayed ACKs should produce roughly half as
	// many ACK packets. Count ACK arrivals by instrumenting drops in
	// the network stats: every egress packet is counted, so compare
	// totals: a->b carries data, b->a carries ACKs.
}

func TestDelAckTimerFlushesOddSegment(t *testing.T) {
	s, ca, cb := mkHalves(8)
	var deliveredAt sim.Time
	cb.SetHandler(func(m Message) { deliveredAt = s.Now() })
	// One segment only: the receiver would wait for a second packet;
	// the delack timer must fire and the sender must finish cleanly
	// (stopTimer on full ack) without a spurious RTO.
	ca.Send(Message{Size: 500})
	s.Run()
	if deliveredAt == 0 {
		t.Fatal("message not delivered")
	}
	if ca.stats.Timeouts != 0 {
		t.Fatalf("spurious RTO: %d", ca.stats.Timeouts)
	}
	// Delivery itself is prompt; only the ACK waits for the timer.
	if deliveredAt > 5*sim.Millisecond {
		t.Fatalf("delivery dragged to %v", deliveredAt)
	}
	// And the sender's stream must be fully acknowledged by the end
	// (the delack timer flushed the ACK).
	if ca.sndUna != ca.streamLen {
		t.Fatalf("stream not fully acked: %d/%d", ca.sndUna, ca.streamLen)
	}
}

func TestSACKRecoveryRetransmitsOnlyHoles(t *testing.T) {
	// Force a hole by simulating: receiver got [0,1460) and
	// [2920, 5840); sender in recovery must retransmit [1460,2920)
	// first, not everything.
	_, ca, cb := mkHalves(9)
	ca.streamLen = 10000
	ca.sndUna = 1460
	ca.sndNxt = 8760
	cb.rcvNxt = 1460
	cb.ooo.add(2920, 5840)
	ca.inRecovery = true
	ca.recoverSeq = 8760
	ca.retxScan = ca.sndUna
	before := ca.stats.Retransmits
	ca.pumpRecovery()
	if ca.stats.Retransmits != before+1 {
		t.Fatalf("retransmits = %d, want exactly 1 hole segment", ca.stats.Retransmits-before)
	}
	if ca.retxScan != 2920 {
		t.Fatalf("retxScan = %d, want 2920 (hole end)", ca.retxScan)
	}
}

func TestGoBackNAfterTimeout(t *testing.T) {
	_, ca, _ := mkHalves(10)
	ca.streamLen = 100_000
	ca.sndUna = 10_000
	ca.sndNxt = 60_000
	ca.timerOn = true
	ca.onTimeout()
	if ca.cwnd != ca.cfg.MSS {
		t.Fatalf("cwnd after RTO = %d, want 1 MSS", ca.cwnd)
	}
	if ca.sndNxt != ca.sndUna+int64(ca.cfg.MSS) {
		t.Fatalf("go-back-N rewind wrong: sndNxt=%d", ca.sndNxt)
	}
	if ca.backoff != 1 || ca.stats.Timeouts != 1 {
		t.Fatalf("backoff/timeout accounting wrong: %d/%d", ca.backoff, ca.stats.Timeouts)
	}
}
