// Package transport implements reliable, ordered, message-oriented
// transports on top of the netsim packet network. Two stacks are
// provided, mirroring the two protocol families of the paper:
//
//   - TCP: a Reno/NewReno-style transport (slow start, AIMD congestion
//     avoidance, fast retransmit, retransmission timeouts with
//     exponential backoff). Packet loss at saturated switch buffers is
//     recovered here, and the recovery cost — above all RTO stalls — is
//     the microscopic origin of the paper's contention ratio γ on the
//     Ethernet networks.
//   - GM: a Myrinet/GM-like transport that relies on the lossless,
//     credit-backpressured network for reliability and simply streams
//     segments; it has no acknowledgments and negligible per-message
//     software cost, matching the paper's observation that the Myrinet
//     start-up cost δ is "almost inexistent".
//
// Message payloads are not materialized: only sizes travel through the
// simulator. Receivers reconstruct message boundaries by counting
// delivered stream bytes.
package transport

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Message is the unit handed across a Conn. Kind, Tag and MsgSeq belong
// to the layer above (the MPI runtime); the transport delivers them
// opaquely, in order, exactly once.
type Message struct {
	Kind   uint8
	Tag    int32
	MsgSeq int64
	Aux    int64 // upper-layer metadata (e.g. rendezvous payload size)
	Size   int   // payload bytes
}

// Handler receives messages delivered on a connection.
type Handler func(msg Message)

// Conn is a reliable, ordered duplex message channel between two hosts.
type Conn interface {
	// Send enqueues a message for the peer. Delivery order equals send
	// order. The call never blocks (simulated buffering is unbounded;
	// flow control happens at the byte level inside the transport).
	Send(msg Message)
	// SetHandler installs the delivery callback on this side.
	SetHandler(h Handler)
	// Stats returns transport counters for this side's sender half.
	Stats() ConnStats
	// Abort kills this side of the connection: pending transmissions are
	// dropped, armed timers are disarmed, and subsequent sends and
	// arriving packets are ignored. Used when the peer (or this host) is
	// declared dead — an aborted connection generates no further events,
	// so the simulation can drain instead of retransmitting into a
	// blackhole forever.
	Abort()
}

// ConnStats counts sender-half protocol activity.
type ConnStats struct {
	MsgsSent        int64
	BytesSent       int64 // payload stream bytes (first transmissions)
	Retransmits     int64 // segments retransmitted (any reason)
	FastRetransmits int64
	Timeouts        int64 // RTO firings
}

// Kind selects a transport stack.
type Kind int

const (
	// TCP is the Reno/NewReno-like stack (use on lossy networks).
	TCP Kind = iota
	// GM is the Myrinet-like stack (use on lossless networks).
	GM
)

// String names the transport kind.
func (k Kind) String() string {
	switch k {
	case TCP:
		return "tcp"
	case GM:
		return "gm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// packet kinds on the wire
const (
	pkData uint8 = 1
	pkAck  uint8 = 2
	pkGM   uint8 = 3
)

// flowID builds the directional flow key src→dst.
func flowID(src, dst netsim.NodeID) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// Endpoint is the per-host transport stack: it owns the host's demux
// table and hands arriving packets to the right connection half.
type Endpoint struct {
	net  *netsim.Network
	host *netsim.Device
	id   netsim.NodeID
	data map[uint64]dataSink // rx flows (peer→me)
	acks map[uint64]ackSink  // tx flows (me→peer), ack packets
}

type dataSink interface{ onData(pkt *netsim.Packet) }
type ackSink interface{ onAck(pkt *netsim.Packet) }

// NewEndpoint attaches a transport stack to a host device.
func NewEndpoint(n *netsim.Network, host *netsim.Device) *Endpoint {
	ep := &Endpoint{
		net: n, host: host, id: host.ID(),
		data: make(map[uint64]dataSink),
		acks: make(map[uint64]ackSink),
	}
	host.SetHandler(ep.onPacket)
	return ep
}

func (ep *Endpoint) onPacket(pkt *netsim.Packet) {
	switch pkt.Kind {
	case pkData, pkGM:
		if s := ep.data[pkt.Flow]; s != nil {
			s.onData(pkt)
		}
	case pkAck:
		if s := ep.acks[pkt.Flow]; s != nil {
			s.onAck(pkt)
		}
	}
}

// Fabric wires a full mesh of connections between a set of hosts using
// one transport kind. It is the object the MPI runtime builds on.
type Fabric struct {
	kind  Kind
	eps   []*Endpoint
	conns [][]Conn // conns[i][j]: connection at host i with peer j
}

// TCPConfig parameterizes the TCP-like stack. Zero fields take defaults
// from DefaultTCPConfig.
type TCPConfig struct {
	MSS        int      // max segment payload bytes
	HeaderSize int      // per-segment wire overhead (eth+ip+tcp+framing)
	AckSize    int      // wire size of a pure ACK
	RcvWindow  int      // receiver window (bytes)
	InitCwnd   int      // initial congestion window (bytes)
	RTOMin     sim.Time // minimum retransmission timeout
	RTOMax     sim.Time // RTO backoff cap
	// TxQueueLimit bounds the data bytes a sender keeps in its host's
	// NIC transmit queue, emulating the bounded device queues
	// (txqueuelen ≈ 100 packets) of real hosts. Without it, whole
	// windows pile into the NIC FIFO and returning ACKs are delayed by
	// the full queue depth, destroying ACK clocking.
	TxQueueLimit int
	// DelAckTimeout is the delayed-ACK timer: in-order traffic is
	// acknowledged every second packet or after this delay.
	DelAckTimeout sim.Time
	// AckJitter is the maximum uniform random delay applied to ACK
	// generation, modeling interrupt coalescing and host noise. It
	// desynchronizes concurrent flows' AIMD cycles as real systems do.
	AckJitter sim.Time
	// MaxRetries caps consecutive retransmission timeouts without ACK
	// progress before the connection gives up and aborts itself
	// (Linux tcp_retries2 semantics). At the default RTO ladder the
	// cap needs ~a minute of total peer silence, which a
	// congested-but-alive peer never produces; it exists so a
	// connection to a permanently lost (blackholed) host stops
	// rearming its RTO timer instead of keeping the simulator's event
	// queue alive forever. Negative disables the cap.
	MaxRetries int
}

// DefaultTCPConfig matches a Linux-2.4-era stack on commodity clusters
// (the software environment of the paper: LAM-MPI on kernel 2.4/2.6).
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		MSS:           1460,
		HeaderSize:    78, // 14 eth + 20 ip + 20 tcp + preamble/IFG share
		AckSize:       84,
		RcvWindow:     64 << 10,
		InitCwnd:      2 * 1460,
		RTOMin:        200 * sim.Millisecond,
		RTOMax:        5 * sim.Second,
		TxQueueLimit:  150 << 10, // ~100 packets of 1538 wire bytes
		DelAckTimeout: 40 * sim.Millisecond,
		AckJitter:     30 * sim.Microsecond,
		MaxRetries:    15, // tcp_retries2
	}
}

// withDefaults fills zero fields from DefaultTCPConfig.
func (c TCPConfig) withDefaults() TCPConfig {
	d := DefaultTCPConfig()
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.HeaderSize == 0 {
		c.HeaderSize = d.HeaderSize
	}
	if c.AckSize == 0 {
		c.AckSize = d.AckSize
	}
	if c.RcvWindow == 0 {
		c.RcvWindow = d.RcvWindow
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = d.InitCwnd
	}
	if c.RTOMin == 0 {
		c.RTOMin = d.RTOMin
	}
	if c.RTOMax == 0 {
		c.RTOMax = d.RTOMax
	}
	if c.TxQueueLimit == 0 {
		c.TxQueueLimit = d.TxQueueLimit
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = d.DelAckTimeout
	}
	if c.AckJitter == 0 {
		c.AckJitter = d.AckJitter
	}
	return c
}

// GMConfig parameterizes the GM-like stack.
type GMConfig struct {
	MTU        int // max packet payload
	HeaderSize int // per-packet wire overhead
}

// DefaultGMConfig mirrors Myrinet 2000 with the gm driver.
func DefaultGMConfig() GMConfig {
	return GMConfig{MTU: 4096, HeaderSize: 16}
}

func (c GMConfig) withDefaults() GMConfig {
	d := DefaultGMConfig()
	if c.MTU == 0 {
		c.MTU = d.MTU
	}
	if c.HeaderSize == 0 {
		c.HeaderSize = d.HeaderSize
	}
	return c
}

// FabricConfig bundles the per-kind transport settings.
type FabricConfig struct {
	Kind Kind
	TCP  TCPConfig
	GM   GMConfig
}

// NewFabric builds endpoints for the given hosts and a full mesh of
// connections among them.
func NewFabric(n *netsim.Network, hosts []*netsim.Device, cfg FabricConfig) *Fabric {
	f := &Fabric{kind: cfg.Kind}
	f.eps = make([]*Endpoint, len(hosts))
	for i, h := range hosts {
		f.eps[i] = NewEndpoint(n, h)
	}
	tcpCfg := cfg.TCP.withDefaults()
	gmCfg := cfg.GM.withDefaults()
	f.conns = make([][]Conn, len(hosts))
	for i := range hosts {
		f.conns[i] = make([]Conn, len(hosts))
	}
	switch cfg.Kind {
	case TCP:
		halves := make([][]*tcpConn, len(hosts))
		for i := range hosts {
			halves[i] = make([]*tcpConn, len(hosts))
		}
		for i := range hosts {
			for j := range hosts {
				if i != j {
					halves[i][j] = newTCPHalf(n, f.eps[i], f.eps[j], tcpCfg)
				}
			}
		}
		for i := range hosts {
			for j := i + 1; j < len(hosts); j++ {
				linkMirror(halves[i][j], halves[j][i])
			}
		}
		for i := range hosts {
			for j := range hosts {
				if i != j {
					f.conns[i][j] = halves[i][j]
				}
			}
		}
	case GM:
		halves := make([][]*gmConn, len(hosts))
		for i := range hosts {
			halves[i] = make([]*gmConn, len(hosts))
		}
		for i := range hosts {
			for j := range hosts {
				if i != j {
					halves[i][j] = newGMHalf(n, f.eps[i], f.eps[j], gmCfg)
				}
			}
		}
		for i := range hosts {
			for j := i + 1; j < len(hosts); j++ {
				linkGMMirror(halves[i][j], halves[j][i])
			}
		}
		for i := range hosts {
			for j := range hosts {
				if i != j {
					f.conns[i][j] = halves[i][j]
				}
			}
		}
	default:
		panic("transport: unknown kind")
	}
	return f
}

// Conn returns host i's connection with peer j.
func (f *Fabric) Conn(i, j int) Conn { return f.conns[i][j] }

// Quench aborts every connection touching host i, in both directions:
// host i's halves and every peer's half facing i. Call it when host i
// is declared dead, so surviving senders stop retransmitting into the
// blackhole and the event loop can drain.
func (f *Fabric) Quench(i int) {
	for j := range f.conns {
		if f.conns[i][j] != nil {
			f.conns[i][j].Abort()
		}
		if f.conns[j][i] != nil {
			f.conns[j][i].Abort()
		}
	}
}

// NumHosts returns the mesh size.
func (f *Fabric) NumHosts() int { return len(f.eps) }

// Kind returns the transport kind of the fabric.
func (f *Fabric) Kind() Kind { return f.kind }

// TotalStats sums sender-half counters across all connections.
func (f *Fabric) TotalStats() ConnStats {
	var t ConnStats
	for i := range f.conns {
		for j := range f.conns[i] {
			if f.conns[i][j] == nil {
				continue
			}
			s := f.conns[i][j].Stats()
			t.MsgsSent += s.MsgsSent
			t.BytesSent += s.BytesSent
			t.Retransmits += s.Retransmits
			t.FastRetransmits += s.FastRetransmits
			t.Timeouts += s.Timeouts
		}
	}
	return t
}
