// Quickstart: characterize a network's contention signature and predict
// All-to-All performance — the paper's workflow end to end, in ~50
// lines:
//
//  1. calibrate the contention-free Hockney parameters (ping-pong),
//  2. measure the All-to-All at one process count n′ across a few
//     message sizes,
//  3. fit the contention signature (γ, δ, M),
//  4. predict completion times for other process counts.
package main

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/signature"
)

func main() {
	profile := cluster.GigabitEthernet()

	// 1. Contention-free point-to-point calibration.
	h := calib.PingPong(profile, mpi.Config{}, 1, calib.PingPongConfig{})
	fmt.Printf("hockney: %s\n", h)

	// 2. Sample the All-to-All at n' = 16.
	const fitN = 16
	var samples []signature.Sample
	for _, m := range []int{16 << 10, 64 << 10, 256 << 10, 512 << 10, 1 << 20} {
		cl := cluster.Build(profile, fitN, int64(m))
		w := mpi.NewWorld(cl, mpi.Config{})
		meas := coll.Measure(w, 1, 2, func(r *mpi.Rank) {
			coll.Alltoall(r, m, coll.PostAll)
		})
		fmt.Printf("measured n=%d m=%-8d %.4fs (lower bound %.4fs)\n",
			fitN, m, meas.Mean(), model.LowerBound(h, fitN, m))
		samples = append(samples, signature.Sample{M: m, T: meas.Mean()})
	}

	// 3. Fit the contention signature.
	sig, rep, err := signature.Fit(h, fitN, samples, signature.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsignature: %s (fit MAPE %.1f%%)\n\n", sig, rep.MAPE*100)

	// 4. Predict other configurations without measuring them.
	for _, n := range []int{8, 24, 40, 64} {
		fmt.Printf("predicted alltoall n=%2d, m=1MB: %.4fs\n", n, sig.Predict(n, 1<<20))
	}
}
