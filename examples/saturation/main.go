// saturation reproduces the Section 3 experiment interactively (Figs. 2
// and 3): it floods a Gigabit Ethernet cluster with growing numbers of
// simultaneous connections and renders the bandwidth collapse and the
// straggler tail as terminal plots.
package main

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/textplot"
)

func main() {
	p := cluster.GigabitEthernet()
	const nodes = 16
	const size = 8 << 20 // scaled-down from the paper's 32 MB

	var xs, avgBW []float64
	var sxs, stimes []float64
	for _, conns := range []int{1, 2, 4, 8, 16, 24, 32, 40} {
		pr := calib.SaturationProbe(p, mpi.Config{}, nodes, conns, size, int64(conns))
		xs = append(xs, float64(conns))
		avgBW = append(avgBW, pr.AvgBandwidth()/1e6)
		for _, t := range pr.Times {
			sxs = append(sxs, float64(conns))
			stimes = append(stimes, t)
		}
		fmt.Printf("conns=%2d  avg bandwidth %6.1f MB/s  mean %.3fs  max %.3fs\n",
			conns, pr.AvgBandwidth()/1e6, pr.MeanTime(), pr.MaxTime())
	}

	fmt.Println()
	fmt.Println(textplot.Plot("Fig. 2 analogue: average bandwidth (MB/s) vs connections", 60, 14,
		textplot.Series{Label: "avg bandwidth", Marker: '*', X: xs, Y: avgBW}))
	fmt.Println(textplot.Plot("Fig. 3 analogue: per-connection times (s) vs connections", 60, 14,
		textplot.Series{Label: "individual transfers", Marker: '.', X: sxs, Y: stimes}))
}
