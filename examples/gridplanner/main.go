// gridplanner shows the downstream use case the paper motivates
// (application performance prediction frameworks, grid-aware collective
// optimization à la LaPIe/MagPIe): given the contention signatures of
// several candidate clusters, pick the cheapest configuration meeting a
// deadline for an All-to-All-dominated workload — without running it.
package main

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/signature"
)

// candidate is a cluster we could rent, with a per-node-hour cost.
type candidate struct {
	profile     cluster.Profile
	nodeCostEUR float64
	sig         model.Signature
}

func main() {
	// Workload: an iterative solver doing 200 All-to-All exchanges of
	// 512 kB per pair per iteration; deadline 60 s of communication.
	const (
		exchanges = 200
		msgSize   = 512 << 10
		deadline  = 60.0
	)

	cands := []candidate{
		{profile: cluster.FastEthernet(), nodeCostEUR: 0.05},
		{profile: cluster.GigabitEthernet(), nodeCostEUR: 0.12},
		{profile: cluster.Myrinet(), nodeCostEUR: 0.25},
	}

	// Characterize each network ONCE at a modest sample size; the
	// signature then predicts any deployment size.
	const fitN = 12
	for i := range cands {
		p := cands[i].profile
		h := calib.PingPong(p, mpi.Config{}, 1, calib.PingPongConfig{Reps: 3})
		var samples []signature.Sample
		for _, m := range []int{16 << 10, 64 << 10, 256 << 10, 512 << 10, 1 << 20} {
			cl := cluster.Build(p, fitN, int64(m))
			w := mpi.NewWorld(cl, mpi.Config{})
			meas := coll.Measure(w, 1, 1, func(r *mpi.Rank) { coll.Alltoall(r, m, coll.PostAll) })
			samples = append(samples, signature.Sample{M: m, T: meas.Mean()})
		}
		sig, _, err := signature.Fit(h, fitN, samples, signature.Options{})
		if err != nil {
			panic(err)
		}
		cands[i].sig = sig
		fmt.Printf("characterized %-18s %s\n", p.Name, sig)
	}

	fmt.Printf("\nworkload: %d exchanges of %d B per pair, deadline %.0fs\n\n", exchanges, msgSize, deadline)
	fmt.Printf("%-18s %6s %12s %12s %10s\n", "cluster", "nodes", "comm_time_s", "meets_dl", "cost_EUR/h")
	bestCost, bestDesc := -1.0, ""
	for _, c := range cands {
		for _, n := range []int{8, 16, 24, 32, 48} {
			t := float64(exchanges) * c.sig.Predict(n, msgSize)
			meets := t <= deadline
			cost := float64(n) * c.nodeCostEUR
			fmt.Printf("%-18s %6d %12.1f %12v %10.2f\n", c.profile.Name, n, t, meets, cost)
			if meets && (bestCost < 0 || cost < bestCost) {
				bestCost = cost
				bestDesc = fmt.Sprintf("%s with %d nodes", c.profile.Name, n)
			}
		}
	}
	if bestCost >= 0 {
		fmt.Printf("\ncheapest configuration meeting the deadline: %s (%.2f EUR/h)\n", bestDesc, bestCost)
	} else {
		fmt.Println("\nno candidate meets the deadline")
	}
}
