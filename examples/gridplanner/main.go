// gridplanner shows the downstream use case the paper motivates
// (application performance prediction frameworks, grid-aware collective
// optimization à la LaPIe/MagPIe), extended to multi-level grids:
// given candidate deployments — flat two-level grids and a 3-level
// campus → national → continental topology — characterize each once
// (per-cluster contention signatures plus one empirical WAN term per
// tier), then, for an All-to-All-dominated workload, let the planner
// pick the best exchange strategy per deployment and choose the
// cheapest deployment meeting a deadline, all without running the
// workload.
//
// Coordinator choice is part of the plan: the planner probes per-node
// uplink headroom during characterization and, per leaf cluster, picks
// which rank(s) relay the hierarchical exchange — steering off degraded
// NICs and splitting wide clusters' gather incast across several
// coordinator ports. The chosen coordinators are rendered per
// deployment below.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// candidate is a grid we could rent, with a per-node-hour cost.
type candidate struct {
	topo        cluster.TopoNode
	nodeCostEUR float64
}

func main() {
	traceOut := flag.String("trace", "", "write an NDJSON observability trace of the run to this file")
	storePath := flag.String("store", "", "persist fitted characterization curves to this JSON file (loaded if present, written back after the run)")
	replanFlag := flag.Bool("replan", false, "after planning, report a degraded-NIC delta on the fe2 deployment and replan it (Service.ReportDelta); with -trace, the trace shows the invalidated tier refitting while unaffected tiers hit the store")
	flag.Parse()
	// The trace collector threads through every planner characterization
	// and the traced validation runs below; nil (no -trace) disables all
	// recording. See docs/OBSERVABILITY.md for the event schema.
	var tc *obs.Collector
	if *traceOut != "" {
		tc = obs.New()
	}

	// With -store, fitted curves persist across runs: the first run
	// characterizes every deployment and writes the store; later runs
	// load it and predict without a single probe (check with
	// -trace + tracecheck -counter planner.probes=0). See docs/SERVICE.md.
	var store *grid.CurveStore
	if *storePath != "" {
		st, err := grid.LoadCurveStoreFile(*storePath)
		switch {
		case err == nil:
			store = st
			fmt.Printf("loaded characterization store %s (%d records)\n\n", *storePath, store.Len())
		case !os.IsNotExist(err):
			panic(err)
		}
	}

	// Workload: an iterative solver doing 30 All-to-All exchanges of
	// 48 kB per pair per iteration; deadline 60 s of communication.
	const (
		exchanges = 30
		msgSize   = 48 << 10
		deadline  = 60.0
	)

	// Two flat two-level grids from the canonical catalogue, and one
	// explicit 3-level tree: two nations of two Gigabit Ethernet
	// campuses each, 10 ms metro links inside a nation, a 40 ms
	// continental mesh between nations.
	fe2, err := cluster.GridByName("fe2-wan20")
	if err != nil {
		panic(err)
	}
	mixed, err := cluster.GridByName("mixed-wan30")
	if err != nil {
		panic(err)
	}
	ge := cluster.WANTuned(cluster.GigabitEthernet()) // long-fat-pipe tuning
	threeLvl := cluster.ThreeLevel("ge-2x2x3", ge, 2, 2, 3,
		cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond))

	// A deployment with a wide Fast Ethernet cluster next to two small
	// Gigabit ones: any single coordinator port saturates under the wide
	// cluster's gather incast, so the planner splits its relay.
	fe := cluster.WANTuned(cluster.FastEthernet())
	wide := cluster.GridProfile{
		Name: "wide-mixed",
		Members: []cluster.GridMember{
			{Profile: fe, Nodes: 8},
			{Profile: ge, Nodes: 3},
			{Profile: ge, Nodes: 3},
		},
		WAN: cluster.DefaultWAN(20 * sim.Millisecond),
	}

	cands := []candidate{
		{topo: fe2.Tree(), nodeCostEUR: 0.05},
		{topo: mixed.Tree(), nodeCostEUR: 0.08},
		{topo: threeLvl, nodeCostEUR: 0.11},
		{topo: wide.Tree(), nodeCostEUR: 0.06},
	}

	fmt.Printf("workload: %d exchanges of %d B per pair, deadline %.0fs\n\n", exchanges, msgSize, deadline)
	fmt.Printf("%-12s %6s %6s %12s %13s %10s %9s\n",
		"grid", "levels", "nodes", "best_strat", "comm_time_s", "meets_dl", "cost_EUR/h")

	// All planning runs through one Service: each topology is
	// characterized at most once (or not at all when the store already
	// has its curves), and the fits land in the shared store.
	svc, err := grid.NewServiceWithStore(grid.Options{FitN: 6, Reps: 1, Trace: tc}, store)
	if err != nil {
		panic(err)
	}

	bestCost, bestDesc := -1.0, ""
	var widePlanner, threePlanner *grid.Planner
	for _, c := range cands {
		// Characterize each member network and each WAN tier once; the
		// model then predicts any message size on this topology.
		pl, err := svc.PlannerFor(c.topo)
		if err != nil {
			panic(err)
		}
		// Pick coordinators from the probed headroom before ranking:
		// hierarchical predictions then price the selected relay.
		choices, err := svc.SelectCoordinators(c.topo, msgSize)
		if err != nil {
			panic(err)
		}
		preds := pl.Predict(msgSize) // sorted fastest first
		best := preds[0]
		t := float64(exchanges) * best.T
		meets := t <= deadline
		nodes := c.topo.TotalNodes()
		cost := float64(nodes) * c.nodeCostEUR
		fmt.Printf("%-12s %6d %6d %12s %13.1f %10v %9.2f\n",
			c.topo.Name, c.topo.Height()+1, nodes, best.Strategy, t, meets, cost)
		for _, pr := range preds {
			fmt.Printf("%-12s        · %-12s %10.1f\n", "", pr.Strategy, float64(exchanges)*pr.T)
		}
		for _, ch := range choices {
			fmt.Printf("%-12s        · coordinators %s\n", "", ch)
		}
		for _, wn := range pl.Warnings {
			fmt.Printf("%-12s        · warning: %s\n", "", wn)
		}
		if meets && (bestCost < 0 || cost < bestCost) {
			bestCost = cost
			bestDesc = fmt.Sprintf("%s via %s", c.topo.Name, best.Strategy)
		}
		if c.topo.Name == wide.Name {
			widePlanner = pl
		}
		if c.topo.Name == threeLvl.Name {
			threePlanner = pl
		}
	}
	if bestCost >= 0 {
		fmt.Printf("\ncheapest deployment meeting the deadline: %s (%.2f EUR/h)\n", bestDesc, bestCost)
	} else {
		fmt.Println("\nno candidate meets the deadline")
	}

	// With -replan, a monitor reports that one fe2 node's NIC dropped to
	// a tenth of its characterized throughput. ReportDelta invalidates
	// exactly that cluster's tier (the compositional key takes ancestors
	// and whole-tree strategy fits with it), rebuilds the planner warm —
	// the sibling cluster's curves hit the store untouched — and
	// re-selects coordinators off the degraded port. See docs/RESILIENCE.md.
	if *replanFlag {
		deg := fe
		deg.Name = fe.Name + "-deg0"
		deg.NodeLinkRates = []int64{1_250_000} // node 0 at 10% of Fast Ethernet
		degTopo := fe2.Tree()
		degTopo.Children = append([]cluster.TopoNode(nil), degTopo.Children...)
		degTopo.Children[0] = cluster.Leaf(deg, 8)
		rep, err := svc.ReportDelta(degTopo, grid.TierKey(fe2.Tree().Children[0]),
			grid.Delta{RateFactor: 0.1, Size: msgSize, Source: "nic-monitor"})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nreplan after NIC degradation on %s cluster 0 (observed 0.1× throughput):\n", fe2.Name)
		fmt.Printf("  invalidated %d stale store records; best strategy now %s (%.1fs predicted)\n",
			rep.DroppedRecords, rep.Predictions[0].Strategy,
			float64(exchanges)*rep.Predictions[0].T)
		for _, ch := range rep.Choices {
			fmt.Printf("  · coordinators %s\n", ch)
		}
	}

	// Under the hood: build the 3-level topology, compile the recursive
	// hierarchical plan, and run one exchange on the mpi runtime — the
	// code path the planner's predictions stand in for.
	g, err := cluster.BuildGridTree(threeLvl, 1)
	if err != nil {
		panic(err)
	}
	plan := coll.PlanHierTree(coll.GridSpec(g), coll.HierGather)
	fmt.Printf("\n%s plan on %s: %d ranks, %d phases, %d messages (%d cross-cluster)\n",
		plan.Alg, threeLvl.Name, plan.Place.NumRanks(), plan.NumPhases(),
		plan.NumMessages(), plan.CrossLeafMessages())
	w := mpi.NewWorld(g.Env, mpi.Config{})
	meas := coll.Measure(w, 1, 1, func(r *mpi.Rank) {
		coll.AlltoallHierPlanned(r, plan, msgSize)
	})
	fmt.Printf("one simulated exchange at %d B per pair: %.2fs\n", msgSize, meas.Mean())

	// The same, with the wide deployment's selected (multi-)coordinator
	// plan: the spec carries the chosen coordinator sets, and the wide
	// leaf's gather/scatter splits across both chosen ports.
	gw, err := cluster.BuildGridTree(wide.Tree(), 1)
	if err != nil {
		panic(err)
	}
	selPlan := coll.PlanHierTree(widePlanner.PlanSpec(), coll.HierGather)
	fmt.Printf("\n%s plan on %s with selected coordinators", selPlan.Alg, wide.Name)
	for l := 0; l < selPlan.Tree.NumLeaves(); l++ {
		fmt.Printf(" leaf%d=%v", l, selPlan.Tree.Coordinators(l))
	}
	fmt.Printf(": %d ranks, %d phases, %d messages (%d cross-cluster)\n",
		selPlan.Place.NumRanks(), selPlan.NumPhases(),
		selPlan.NumMessages(), selPlan.CrossLeafMessages())
	ww := mpi.NewWorld(gw.Env, mpi.Config{})
	measSel := coll.Measure(ww, 1, 1, func(r *mpi.Rank) {
		coll.AlltoallHierPlanned(r, selPlan, msgSize)
	})
	fmt.Printf("one simulated exchange at %d B per pair: %.2fs\n", msgSize, measSel.Mean())

	// The contention factors behind those predictions are size-indexed
	// curves, fitted at Options.ProbeSizes (default 8/64/256 KiB) and
	// interpolated in log-size between the fits (docs/MODEL.md §8) —
	// a 48 kB exchange is not priced with a 256 kB probe's factor.
	fmt.Printf("\n%s fitted factor curves: γ_wan(root)=[%s] ω=[%s] κ=[%s]\n",
		threeLvl.Name, threePlanner.Model.Root.Wan.Gamma,
		threePlanner.Model.OverlapGamma, threePlanner.Model.GatherGamma)

	// Irregular workloads: the same characterization ranks strategies
	// per size matrix (All-to-Allv). Here the 3-level deployment runs a
	// hotspot workload — rank 0 fans out 4× bulk to every peer — and the
	// planner prices each tier's WAN leg by the matrix's actual
	// cross-subtree byte cuts (each factor curve looked up at the legs'
	// effective per-flow sizes) instead of n·m (docs/MODEL.md §7–§8).
	hotspot := coll.SizeMatrixFromRows(cluster.HotspotRowBytes(threeLvl, msgSize, 0, 4))
	renderDiagnostics(tc, threePlanner, threeLvl, msgSize)

	fmt.Printf("\nAll-to-Allv on %s (hotspot-row: rank 0 sends 4×%d B per pair):\n",
		threeLvl.Name, msgSize)
	for _, pr := range threePlanner.PredictV(hotspot) { // sorted fastest first
		fmt.Printf("  %-12s %.2fs predicted\n", pr.Strategy, pr.T)
	}
	gv, err := cluster.BuildGridTree(threeLvl, 1)
	if err != nil {
		panic(err)
	}
	vplan := coll.PlanHierTreeV(threePlanner.PlanSpec(), coll.HierGather, hotspot)
	wv := mpi.NewWorld(gv.Env, mpi.Config{})
	measV := coll.Measure(wv, 1, 1, func(r *mpi.Rank) {
		coll.AlltoallHierPlannedV(r, vplan)
	})
	fmt.Printf("one simulated %s exchange of the hotspot matrix (%d B total): %.2fs\n",
		vplan.Alg, hotspot.Total(), measV.Mean())

	// The same characterization prices the whole collective suite: the
	// solver's reduction and redistribution phases reuse the fitted tier
	// curves and κ through the per-kind decomposition (docs/MODEL.md §9),
	// with one lazily calibrated correction curve per kind — persisted in
	// the store like every other fit, so warm runs predict the suite
	// without probing.
	fmt.Printf("\ncollective suite on %s at %d B per rank:\n", threeLvl.Name, msgSize)
	for _, kind := range []coll.Kind{coll.KindBroadcast, coll.KindAllgather, coll.KindAllreduce} {
		preds, err := svc.PredictKind(threeLvl, kind, msgSize)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-15s best %-12s %.3fs  (", kind, preds[0].Strategy, preds[0].T)
		for i, pr := range preds {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%.3fs", pr.Strategy, pr.T)
		}
		fmt.Println(")")
	}
	// Ground-truth one suite plan end to end: compile allreduce over the
	// selected coordinator tree and run it traced (a simulate.kind span
	// with per-phase events; the run counts under planner.validations,
	// so a warm store still reports planner.probes=0).
	tAr, arPhases, err := grid.SimulateSpecKindTraced(tc, threeLvl, threePlanner.PlanSpec(),
		coll.KindAllreduce, coll.HierGather, msgSize, 1, 1, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("one simulated allreduce at %d B per rank: %.2fs over %d traced phases\n",
		msgSize, tAr, len(arPhases))

	if *storePath != "" {
		// SaveFile writes atomically (temp file + rename), so a crash
		// mid-save never leaves a torn store for the next run to load.
		if err := svc.Store().SaveFile(*storePath); err != nil {
			panic(err)
		}
		fmt.Printf("\ncharacterization store (%d records) written to %s\n", svc.Store().Len(), *storePath)
	}

	if tc != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			panic(err)
		}
		if err := tc.WriteNDJSON(f); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		fmt.Printf("\nobservability trace (%d events) written to %s\n", len(tc.Events()), *traceOut)
	}
}

// renderDiagnostics shows what the observability layer collected for
// the 3-level deployment when tracing is on: the probe-dispersion
// intervals behind the fitted factors, and the per-phase timing
// breakdown of one traced validation run (which also lands in the
// trace as simulate.phases and netsim.port events).
func renderDiagnostics(tc *obs.Collector, pl *grid.Planner, topo cluster.TopoNode, msgSize int) {
	if tc == nil {
		return
	}
	var labels []string
	var lo, mid, hi []float64
	for _, ps := range pl.ProbeStats {
		labels = append(labels, ps.Label())
		lo, mid, hi = append(lo, ps.Min), append(mid, ps.Median), append(hi, ps.Max)
	}
	fmt.Println()
	fmt.Print(textplot.Intervals(
		fmt.Sprintf("%s probe dispersion per seed (min—median—max, s)", topo.Name),
		labels, lo, mid, hi, 40))

	t, phases, err := grid.SimulateSpecTraced(tc, topo, pl.PlanSpec(), coll.HierGather, msgSize, 1, 1, 1)
	if err != nil {
		panic(err)
	}
	var phLabels []string
	var phDurs []float64
	for _, ph := range phases {
		phLabels = append(phLabels, ph.Label)
		phDurs = append(phDurs, ph.Dur())
	}
	fmt.Println()
	fmt.Print(textplot.HBar(
		fmt.Sprintf("%s hier-gather per-phase span (s, total %.2fs)", topo.Name, t),
		phLabels, phDurs, 40))
}
