// gridplanner shows the downstream use case the paper motivates
// (application performance prediction frameworks, grid-aware collective
// optimization à la LaPIe/MagPIe), extended to multi-cluster grids:
// given candidate grid deployments, characterize each once — per-cluster
// contention signatures plus the WAN term — then, for an
// All-to-All-dominated workload, let the planner pick the best exchange
// strategy per deployment and choose the cheapest deployment meeting a
// deadline, all without running the workload.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/grid"
)

// candidate is a grid we could rent, with a per-node-hour cost.
type candidate struct {
	name        string
	nodeCostEUR float64
}

func main() {
	// Workload: an iterative solver doing 30 All-to-All exchanges of
	// 48 kB per pair per iteration; deadline 30 s of communication.
	const (
		exchanges = 30
		msgSize   = 48 << 10
		deadline  = 30.0
	)

	cands := []candidate{
		{name: "fe2-wan20", nodeCostEUR: 0.05},
		{name: "ge3-wan50", nodeCostEUR: 0.12},
		{name: "mixed-wan30", nodeCostEUR: 0.08},
	}

	fmt.Printf("workload: %d exchanges of %d B per pair, deadline %.0fs\n\n", exchanges, msgSize, deadline)
	fmt.Printf("%-12s %6s %12s %13s %10s %9s\n",
		"grid", "nodes", "best_strat", "comm_time_s", "meets_dl", "cost_EUR/h")

	bestCost, bestDesc := -1.0, ""
	for _, c := range cands {
		gp, err := cluster.GridByName(c.name)
		if err != nil {
			panic(err)
		}
		// Characterize each member network and the WAN once; the model
		// then predicts any message size on this grid.
		pl, err := grid.NewPlanner(gp, grid.Options{FitN: 6, Reps: 1})
		if err != nil {
			panic(err)
		}
		preds := pl.Predict(msgSize) // sorted fastest first
		best := preds[0]
		t := float64(exchanges) * best.T
		meets := t <= deadline
		nodes := gp.TotalNodes()
		cost := float64(nodes) * c.nodeCostEUR
		fmt.Printf("%-12s %6d %12s %13.1f %10v %9.2f\n",
			c.name, nodes, best.Strategy, t, meets, cost)
		for _, pr := range preds {
			fmt.Printf("%-12s        · %-12s %10.1f\n", "", pr.Strategy, float64(exchanges)*pr.T)
		}
		if meets && (bestCost < 0 || cost < bestCost) {
			bestCost = cost
			bestDesc = fmt.Sprintf("%s via %s", c.name, best.Strategy)
		}
	}
	if bestCost >= 0 {
		fmt.Printf("\ncheapest deployment meeting the deadline: %s (%.2f EUR/h)\n", bestDesc, bestCost)
	} else {
		fmt.Println("\nno candidate meets the deadline")
	}
}
