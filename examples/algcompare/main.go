// algcompare races the four All-to-All algorithms on each cluster
// profile and two message-size regimes, illustrating the paper's
// motivating observation: algorithm cost under contention is not what
// contention-free models predict, and the best algorithm depends on the
// network and the message size.
package main

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
)

func main() {
	profiles := []cluster.Profile{
		cluster.FastEthernet(),
		cluster.GigabitEthernet(),
		cluster.Myrinet(),
	}
	const n = 16
	sizes := []int{2 << 10, 512 << 10} // latency-bound vs bandwidth-bound

	for _, p := range profiles {
		h := calib.PingPong(p, mpi.Config{}, 1, calib.PingPongConfig{Reps: 3})
		fmt.Printf("\n=== %s (%s) ===\n", p.Name, h)
		for _, m := range sizes {
			lb := model.LowerBound(h, n, m)
			fmt.Printf("  message %7dB (lower bound %.5fs):\n", m, lb)
			best, bestT := "", 0.0
			for _, alg := range coll.Algorithms {
				cl := cluster.Build(p, n, 7)
				w := mpi.NewWorld(cl, mpi.Config{})
				meas := coll.Measure(w, 1, 2, func(r *mpi.Rank) {
					coll.Alltoall(r, m, alg)
				})
				eff := alg.Effective(n) // Pairwise falls back to Direct off powers of two
				fmt.Printf("    %-8s %.5fs  (%.2fx lower bound)\n", eff, meas.Mean(), meas.Mean()/lb)
				if best == "" || meas.Mean() < bestT {
					best, bestT = eff.String(), meas.Mean()
				}
			}
			fmt.Printf("    -> best: %s\n", best)
		}
	}
}
